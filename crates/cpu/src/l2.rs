//! The shared L2/memory subsystem: a unified second-level cache plus a
//! bandwidth-limited memory port, shared by the two cores of a slipstream
//! pair (the paper's CMP shares everything past the private L1s).
//!
//! # Determinism: a replicated L2, not a locked one
//!
//! The slipstream schedulers (serial, slack-window, two threads) must all
//! produce byte-identical results, and the windowed/threaded schedulers run
//! the A-core a whole window ahead of the R-core. A single mutable L2
//! touched by both cores in real time would make every core's hit/miss
//! pattern depend on scheduler interleaving. Instead, each core owns an
//! [`L2View`]:
//!
//! - **canonical state** — L2 tags and memory-port busy times as of the
//!   last sync boundary, identical across the two views;
//! - **a private overlay** — lines this core filled since the boundary
//!   (so its own repeat accesses hit) and port reservations for its own
//!   fills (so its own fills queue behind each other);
//! - **an access log** — every L2 access since the boundary, stamped with
//!   `(cycle, per-core ordinal)`.
//!
//! At every sync boundary — the same points where the slipstream machine
//! applies deferred predictor/IR-table learning — the two logs are merged
//! in a fixed `(cycle, core-id, ordinal)` order ([`merge_l2_logs`]) and
//! replayed onto both canonical replicas ([`L2View::apply_boundary`]),
//! which therefore stay bit-identical without any cross-thread sharing.
//! Within a window a core sees only boundary state plus its own traffic,
//! so results cannot depend on how far the other core has advanced — the
//! property the mode-equivalence battery pins down.
//!
//! The cost of this construction is that *cross-core* contention becomes
//! visible at window granularity: core 0's fills delay core 1's only from
//! the next boundary on (own-traffic contention is exact). The sync
//! quantum is already an architectural parameter (it bounds learning
//! visibility the same way); at quantum 1 the model converges to exact
//! per-cycle arbitration.
//!
//! The hierarchy is non-inclusive non-exclusive (NINE): an L2 eviction
//! does not back-invalidate the L1s, matching the tag-only timing model.

use crate::cache::{Cache, CacheConfig};

/// Geometry and timing of the shared L2 and its memory port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Total capacity in bytes.
    pub bytes: usize,
    /// Set associativity.
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Cycles from an L1 miss reaching the L2 to data return on an L2 hit
    /// (also the tag-check time spent before a fill can start on a miss).
    pub hit_latency: u64,
    /// Cycles to fill a line from memory once a port slot is granted.
    pub fill_latency: u64,
    /// Memory-port bandwidth: line fills that may be in flight at once.
    /// A fill requested while all slots are busy waits for the earliest
    /// one to free (the wait is charged as port-stall cycles).
    pub max_fills: usize,
}

impl L2Config {
    /// The default shared L2 of the `cmp_shared_l2` model: 512 KB, 8-way,
    /// LRU, 64-byte lines, 14-cycle hit (the latency the private-cache
    /// model charged as its flat miss penalty, so an L2-resident line
    /// costs the same as before), 80-cycle memory fill, 4 fills in flight.
    pub fn l2_512k_8w() -> L2Config {
        L2Config {
            bytes: 512 * 1024,
            assoc: 8,
            line_bytes: 64,
            hit_latency: 14,
            fill_latency: 80,
            max_fills: 4,
        }
    }

    fn cache_config(&self) -> CacheConfig {
        CacheConfig {
            bytes: self.bytes,
            assoc: self.assoc,
            line_bytes: self.line_bytes,
            // Unused: miss cost comes from the port model.
            miss_penalty: self.fill_latency,
        }
    }
}

/// One logged L2 access: the replay unit of the boundary merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Access {
    /// Simulated cycle the request reached the L2.
    pub cycle: u64,
    /// Per-core access ordinal since the last boundary — the third key of
    /// the `(cycle, core-id, ordinal)` arbitration tie-break.
    pub ord: u32,
    /// Line index (address >> line shift).
    pub line: u64,
    /// Whether the requesting core issued a memory fill (its view missed).
    pub fill: bool,
}

/// What one L2 access cost the requesting core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Outcome {
    /// Whether the line was present (canonical state or own overlay).
    pub hit: bool,
    /// Cycle the data is available to the L1.
    pub ready_at: u64,
    /// Cycles the fill waited for a free memory-port slot (0 on hits).
    pub port_stall: u64,
}

/// One core's deterministic view of the shared L2 (see module docs).
#[derive(Debug)]
pub struct L2View {
    cfg: L2Config,
    core_id: u8,
    /// Tags as of the last sync boundary — bit-identical across views.
    canonical: Cache,
    /// Port-slot busy-until cycles as of the last boundary (canonical).
    canonical_port: Vec<u64>,
    /// Working port slots: canonical plus this core's in-window fills.
    port: Vec<u64>,
    /// Lines this core filled since the boundary (own repeat hits).
    overlay: Vec<u64>,
    /// Accesses since the boundary, in `(cycle, ord)` order.
    log: Vec<L2Access>,
    next_ord: u32,
    line_shift: u32,
    hits: u64,
    misses: u64,
    /// Cumulative cycles this core's fills waited for a port slot — the
    /// L2-side total behind the per-core `port_stall_cycles` stat and the
    /// CPI stack's `l2_port` bucket.
    port_stall_cycles: u64,
}

// Hand-written so `clone_from` reuses the destination's vectors — the
// slack-window checkpoint clones each core's view once per window.
impl Clone for L2View {
    fn clone(&self) -> L2View {
        L2View {
            cfg: self.cfg,
            core_id: self.core_id,
            canonical: self.canonical.clone(),
            canonical_port: self.canonical_port.clone(),
            port: self.port.clone(),
            overlay: self.overlay.clone(),
            log: self.log.clone(),
            next_ord: self.next_ord,
            line_shift: self.line_shift,
            hits: self.hits,
            misses: self.misses,
            port_stall_cycles: self.port_stall_cycles,
        }
    }

    fn clone_from(&mut self, src: &L2View) {
        self.cfg = src.cfg;
        self.core_id = src.core_id;
        self.canonical.clone_from(&src.canonical);
        self.canonical_port.clone_from(&src.canonical_port);
        self.port.clone_from(&src.port);
        self.overlay.clone_from(&src.overlay);
        self.log.clone_from(&src.log);
        self.next_ord = src.next_ord;
        self.line_shift = src.line_shift;
        self.hits = src.hits;
        self.misses = src.misses;
        self.port_stall_cycles = src.port_stall_cycles;
    }
}

impl L2View {
    /// Creates an empty view for `core_id` (0 = A-stream/leader,
    /// 1 = R-stream/trailer; the id is the arbitration tie-break).
    pub fn new(cfg: L2Config, core_id: u8) -> L2View {
        let canonical = Cache::new(cfg.cache_config());
        L2View {
            core_id,
            canonical,
            canonical_port: vec![0; cfg.max_fills.max(1)],
            port: vec![0; cfg.max_fills.max(1)],
            overlay: Vec::new(),
            log: Vec::new(),
            next_ord: 0,
            line_shift: cfg.line_bytes.trailing_zeros(),
            hits: 0,
            misses: 0,
            port_stall_cycles: 0,
            cfg,
        }
    }

    /// The configured geometry/timing.
    pub fn config(&self) -> L2Config {
        self.cfg
    }

    /// Which core this view belongs to.
    pub fn core_id(&self) -> u8 {
        self.core_id
    }

    /// L2 hits observed by this core.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// L2 misses (memory fills) issued by this core.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Cumulative cycles this core's fills spent queued for a free
    /// memory-port slot.
    pub fn port_stall_cycles(&self) -> u64 {
        self.port_stall_cycles
    }

    /// Services an L1 miss whose request reaches the L2 at `cycle`. Logs
    /// the access, updates the private overlay/port state, and returns the
    /// timing outcome. Deterministic given the boundary state and this
    /// core's own access history.
    pub fn access(&mut self, cycle: u64, addr: u64) -> L2Outcome {
        let line = addr >> self.line_shift;
        let hit = self.canonical.probe(addr) || self.overlay.contains(&line);
        let ord = self.next_ord;
        self.next_ord += 1;
        self.log.push(L2Access {
            cycle,
            ord,
            line,
            fill: !hit,
        });
        if hit {
            self.hits += 1;
            return L2Outcome {
                hit: true,
                ready_at: cycle + self.cfg.hit_latency,
                port_stall: 0,
            };
        }
        self.misses += 1;
        self.overlay.push(line);
        // Tag check runs before the fill can be requested.
        let request = cycle + self.cfg.hit_latency;
        let slot = earliest_slot(&self.port);
        let start = request.max(self.port[slot]);
        self.port[slot] = start + self.cfg.fill_latency;
        self.port_stall_cycles += start - request;
        L2Outcome {
            hit: false,
            ready_at: start + self.cfg.fill_latency,
            port_stall: start - request,
        }
    }

    /// The accesses logged since the last boundary, oldest first.
    pub fn log(&self) -> &[L2Access] {
        &self.log
    }

    /// Removes and returns the logged accesses (the boundary handshake
    /// ships them to the other core before [`L2View::apply_boundary`]).
    pub fn take_log(&mut self) -> Vec<L2Access> {
        std::mem::take(&mut self.log)
    }

    /// Boundary sync: replays the merged two-core access stream (from
    /// [`merge_l2_logs`]) onto the canonical tags and port, then resets
    /// the per-window overlay/log state. Applying the same `merged` slice
    /// to both views keeps their canonical replicas bit-identical.
    pub fn apply_boundary(&mut self, merged: &[L2Access]) {
        debug_assert!(
            self.log.is_empty(),
            "take_log must run before apply_boundary"
        );
        for a in merged {
            let addr = a.line << self.line_shift;
            self.canonical.access(addr);
            if a.fill {
                let slot = earliest_slot(&self.canonical_port);
                let start = (a.cycle + self.cfg.hit_latency).max(self.canonical_port[slot]);
                self.canonical_port[slot] = start + self.cfg.fill_latency;
            }
        }
        self.port.copy_from_slice(&self.canonical_port);
        self.overlay.clear();
        self.next_ord = 0;
    }
}

/// Index of the port slot that frees earliest (first on ties — fixed,
/// deterministic).
fn earliest_slot(slots: &[u64]) -> usize {
    let mut best = 0;
    for (i, &b) in slots.iter().enumerate().skip(1) {
        if b < slots[best] {
            best = i;
        }
    }
    let _ = &slots[best];
    best
}

/// Merges the two cores' boundary logs into the canonical arbitration
/// order: ascending `(cycle, core-id, ordinal)`, where `log0` is core 0
/// (the A-stream wins same-cycle ties) and `log1` is core 1. Both inputs
/// are already `(cycle, ordinal)`-sorted because cores log in simulation
/// order.
pub fn merge_l2_logs(log0: &[L2Access], log1: &[L2Access]) -> Vec<L2Access> {
    let mut out = Vec::with_capacity(log0.len() + log1.len());
    let (mut i, mut j) = (0, 0);
    while i < log0.len() && j < log1.len() {
        // Core 0 goes first on equal cycles: the fixed core-id tie-break.
        if log0[i].cycle <= log1[j].cycle {
            out.push(log0[i]);
            i += 1;
        } else {
            out.push(log1[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&log0[i..]);
    out.extend_from_slice(&log1[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> L2Config {
        // 2 sets x 2 ways x 64B lines = 256 B, easy to force evictions.
        L2Config {
            bytes: 256,
            assoc: 2,
            line_bytes: 64,
            hit_latency: 10,
            fill_latency: 50,
            max_fills: 2,
        }
    }

    #[test]
    fn miss_fill_then_own_window_hit() {
        let mut v = L2View::new(tiny(), 0);
        let m = v.access(100, 0x1000);
        assert!(!m.hit);
        assert_eq!(m.ready_at, 100 + 10 + 50);
        assert_eq!(m.port_stall, 0);
        // Same line, same window: the private overlay serves it.
        let h = v.access(120, 0x1020);
        assert!(h.hit);
        assert_eq!(h.ready_at, 120 + 10);
        assert_eq!((v.hits(), v.misses()), (1, 1));
    }

    #[test]
    fn port_bandwidth_limits_fills_in_flight() {
        let mut v = L2View::new(tiny(), 0);
        // Three same-cycle fills into a 2-slot port: the third waits for
        // the first slot to free.
        let a = v.access(0, 0x0000);
        let b = v.access(0, 0x2000);
        let c = v.access(0, 0x4000);
        assert_eq!(a.port_stall, 0);
        assert_eq!(b.port_stall, 0);
        assert_eq!(c.port_stall, 50, "third fill queues one full fill time");
        // cycle 0 + hit latency 10 + one queued fill time 50 + own fill 50.
        assert_eq!(c.ready_at, 110);
    }

    #[test]
    fn boundary_merge_keeps_replicas_identical() {
        // Two views, asymmetric traffic, then the same merged log applied
        // to both: every subsequent probe must agree.
        let mut a = L2View::new(tiny(), 0);
        let mut r = L2View::new(tiny(), 1);
        a.access(1, 0x0000);
        a.access(3, 0x2000);
        r.access(2, 0x0000); // same line as A's first — both charged a fill
        r.access(2, 0x4000);
        let (la, lr) = (a.take_log(), r.take_log());
        let merged = merge_l2_logs(&la, &lr);
        assert_eq!(merged.len(), 4);
        assert_eq!(
            merged.iter().map(|m| m.cycle).collect::<Vec<_>>(),
            vec![1, 2, 2, 3]
        );
        a.apply_boundary(&merged);
        r.apply_boundary(&merged);
        for addr in [0x0000u64, 0x2000, 0x4000, 0x6000] {
            let (oa, or) = (a.access(10, addr), r.access(10, addr));
            assert_eq!(oa, or, "replicas disagree at {addr:#x}");
            // Fresh logs for the next round keep the views in lockstep.
            let (la, lr) = (a.take_log(), r.take_log());
            let merged = merge_l2_logs(&la, &lr);
            a.apply_boundary(&merged);
            r.apply_boundary(&merged);
        }
    }

    #[test]
    fn merge_tie_break_is_cycle_then_core_then_ordinal() {
        let l0 = [
            L2Access {
                cycle: 5,
                ord: 0,
                line: 1,
                fill: true,
            },
            L2Access {
                cycle: 5,
                ord: 1,
                line: 2,
                fill: true,
            },
        ];
        let l1 = [
            L2Access {
                cycle: 4,
                ord: 0,
                line: 3,
                fill: true,
            },
            L2Access {
                cycle: 5,
                ord: 1,
                line: 4,
                fill: true,
            },
        ];
        let merged = merge_l2_logs(&l0, &l1);
        let order: Vec<u64> = merged.iter().map(|m| m.line).collect();
        // Cycle 4 first; at cycle 5 core 0 wins, its own ordinals in order.
        assert_eq!(order, vec![3, 1, 2, 4]);
    }

    #[test]
    fn eviction_after_merge_is_lru_and_visible_to_both() {
        let mut a = L2View::new(tiny(), 0);
        let mut r = L2View::new(tiny(), 1);
        // Set 0 lines at stride 2 sets x 64 B = 128 B: 0x000, 0x080, 0x100.
        a.access(1, 0x000);
        a.access(2, 0x080);
        a.access(3, 0x000); // touch: LRU is now 0x080
        a.access(4, 0x100); // evicts 0x080 at the merge
        let (la, lr) = (a.take_log(), r.take_log());
        let merged = merge_l2_logs(&la, &lr);
        a.apply_boundary(&merged);
        r.apply_boundary(&merged);
        assert!(a.access(10, 0x000).hit, "touched line survives");
        assert!(r.access(10, 0x100).hit, "new line resident in both views");
        assert!(!r.access(11, 0x080).hit, "LRU line evicted in both views");
    }

    #[test]
    fn cross_core_port_contention_lands_at_the_next_boundary() {
        let cfg = tiny();
        let mut a = L2View::new(cfg, 0);
        let mut r = L2View::new(cfg, 1);
        // Window 1: both cores saturate the 2-slot port independently —
        // neither sees the other's fills yet (each charged only its own).
        for (i, v) in [&mut a, &mut r].into_iter().enumerate() {
            v.access(0, 0x2000 * (1 + i as u64));
            v.access(0, 0x2000 * (3 + i as u64));
        }
        let (la, lr) = (a.take_log(), r.take_log());
        let merged = merge_l2_logs(&la, &lr);
        a.apply_boundary(&merged);
        r.apply_boundary(&merged);
        // The merged four fills occupied both slots twice: slots busy
        // until cycle 10+50+50. A window-2 fill at cycle 20 must stall.
        let out = a.access(20, 0xa000);
        assert!(!out.hit);
        assert!(
            out.port_stall > 0,
            "merged cross-core fills must delay the next window"
        );
        assert_eq!(out.port_stall, (10 + 50 + 50) - (20 + 10));
    }

    #[test]
    fn merge_is_independent_of_which_side_computes_it() {
        // The two sides of the threaded scheduler each compute the merge
        // from their own copies of the logs; the result must be one list.
        let mut a = L2View::new(tiny(), 0);
        let mut r = L2View::new(tiny(), 1);
        for c in 0..6u64 {
            a.access(c, 0x80 * c);
            if c.is_multiple_of(2) {
                r.access(c, 0x80 * (c + 7));
            }
        }
        let (la, lr) = (a.take_log(), r.take_log());
        let m1 = merge_l2_logs(&la, &lr);
        let m2 = merge_l2_logs(&la.clone(), &lr.clone());
        assert_eq!(m1, m2);
        // And applying it twice to fresh views converges to equal state.
        let mut x = L2View::new(tiny(), 0);
        let mut y = L2View::new(tiny(), 1);
        x.apply_boundary(&m1);
        y.apply_boundary(&m2);
        assert_eq!(x.access(50, 0x80).hit, y.access(50, 0x80).hit);
    }
}
