use slipstream_isa::{Instr, Retired};

/// One instruction slot handed to the core by its control-flow supplier.
///
/// The core never consults the program text itself: whoever drives it (a
/// trace-predictor front end, the delay buffer, an oracle) resolves PCs to
/// instructions and decides the predicted path. This is what lets one core
/// implementation serve the superscalar baselines, the A-stream (with
/// instructions removed), and the R-stream (fed from the delay buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchItem {
    /// Address of the instruction.
    pub pc: u64,
    /// The instruction at `pc`.
    pub instr: Instr,
    /// Predicted next PC *in the supplied stream* — i.e. the PC of the next
    /// item the driver intends to supply. Dispatch compares the actual
    /// next PC against this to detect control mispredictions.
    pub pred_npc: u64,
    /// Predicted conditional-branch outcome (`None` for non-branches).
    pub pred_taken: Option<bool>,
    /// Whether this instruction starts a new fetch block: a fresh fetch
    /// cycle must begin here (targets of taken branches/jumps, skip-chunk
    /// landing points, post-redirect restart).
    pub new_block: bool,
    /// Fetch slots this item consumes: 1 plus any immediately preceding
    /// removed-but-fetched instructions in the same block (the paper's
    /// ir-vec collapses those after fetch, before decode — they cost fetch
    /// bandwidth but not dispatch bandwidth).
    pub slot_cost: u32,
    /// Opaque driver tag, echoed back in [`CoreDriver::on_dispatch`],
    /// [`CoreDriver::on_retire`], and [`CoreDriver::on_redirect`] so the
    /// driver can correlate pipeline events with its own bookkeeping.
    pub meta: u64,
}

impl FetchItem {
    /// A plain sequential item: predicts fall-through, costs one slot.
    pub fn sequential(pc: u64, instr: Instr) -> FetchItem {
        FetchItem {
            pc,
            instr,
            pred_npc: pc + 4,
            pred_taken: instr.is_branch().then_some(false),
            new_block: false,
            slot_cost: 1,
            meta: 0,
        }
    }
}

/// A reusable, caller-owned block of fetch items.
///
/// [`crate::Core`] hands one of these to [`CoreDriver::next_fetch_block`]
/// once per fetch group instead of making one virtual `next_fetch` call per
/// instruction slot. The block is a simple cursor over a recycled `Vec`:
/// items the core could not consume this cycle (fetch queue full, icache
/// miss, block boundary) stay in the block and are re-examined next cycle,
/// playing the role the old single-item `pending_fetch` stash did.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct FetchBlock {
    items: Vec<FetchItem>,
    head: usize,
}

// Hand-written so `clone_from` reuses the destination's item buffer when
// a whole `Core` is checkpointed every slack window.
impl Clone for FetchBlock {
    fn clone(&self) -> FetchBlock {
        FetchBlock {
            items: self.items.clone(),
            head: self.head,
        }
    }

    fn clone_from(&mut self, src: &FetchBlock) {
        self.items.clone_from(&src.items);
        self.head = src.head;
    }
}

impl FetchBlock {
    /// An empty block with no reserved capacity.
    pub fn new() -> FetchBlock {
        FetchBlock::default()
    }

    /// Discards all items (keeps the allocation for reuse).
    pub fn clear(&mut self) {
        self.items.clear();
        self.head = 0;
    }

    /// Unconsumed items remaining in the block.
    pub fn len(&self) -> usize {
        self.items.len() - self.head
    }

    /// True when every item has been consumed (or none were supplied).
    pub fn is_empty(&self) -> bool {
        self.head == self.items.len()
    }

    /// The next unconsumed item, without consuming it.
    pub fn peek(&self) -> Option<&FetchItem> {
        self.items.get(self.head)
    }

    /// Consumes the item [`FetchBlock::peek`] returned.
    pub fn advance(&mut self) {
        debug_assert!(self.head < self.items.len());
        self.head += 1;
        if self.head == self.items.len() {
            self.clear();
        }
    }

    /// Appends an item (drivers call this from
    /// [`CoreDriver::next_fetch_block`]).
    pub fn push(&mut self, item: FetchItem) {
        self.items.push(item);
    }
}

/// Per-instruction hints returned by the driver at dispatch, implementing
/// the paper's value communication: operands whose values arrived from the
/// A-stream via the delay buffer are treated as ready immediately (value
/// prediction at the rename stage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchHints {
    /// First source operand's value was predicted — don't wait for its
    /// producer.
    pub src1_predicted: bool,
    /// Second source operand's value was predicted.
    pub src2_predicted: bool,
}

/// Why a driver is (or is about to be) withholding work from its core this
/// cycle — a cycle-accounting hint sampled once at the top of every core
/// cycle. It carries no timing information and the core makes no timing
/// decision from it; it only routes otherwise-idle cycles to the right
/// [`crate::CpiCat`] bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DriverStall {
    /// Not stalled (or the driver doesn't report causes).
    #[default]
    None,
    /// The driver has nothing to supply (e.g. the R-stream's delay buffer
    /// is empty).
    Starved,
    /// Downstream back-pressure is throttling the core (e.g. the A-stream
    /// blocked on a full delay buffer via `retire_capacity`).
    Backpressure,
    /// The stream is frozen pending recovery (e.g. the R-stream between
    /// IR-misprediction detection and the A-stream's squash).
    Frozen,
}

/// The control-flow and observation interface a [`crate::Core`] is driven
/// by.
///
/// Call order within one simulated cycle: retirements first
/// ([`CoreDriver::on_retire`]), then any resolved misprediction
/// ([`CoreDriver::on_redirect`]), then dispatches
/// ([`CoreDriver::on_dispatch`]), then fetches ([`CoreDriver::next_fetch`]).
pub trait CoreDriver {
    /// Supplies the next instruction on the predicted path, or `None` to
    /// let fetch idle this cycle (e.g. delay buffer empty, program done).
    fn next_fetch(&mut self) -> Option<FetchItem>;

    /// Batched fetch: appends up to `max` items to `out`, stopping early
    /// when the stream idles. MUST yield the byte-identical item sequence
    /// that repeated [`CoreDriver::next_fetch`] calls would — the core uses
    /// the two interchangeably and the property-test battery compares them.
    /// The default forwards to `next_fetch`; hot drivers override it to
    /// amortize the virtual call and their own per-item bookkeeping.
    fn next_fetch_block(&mut self, out: &mut FetchBlock, max: usize) {
        while out.len() < max {
            match self.next_fetch() {
                Some(item) => out.push(item),
                None => break,
            }
        }
    }

    /// A control misprediction resolved: `resolved` is the offending
    /// instruction's functional record; fetch restarts at
    /// `resolved.next_pc`. The driver must resynchronize its predictor
    /// state. Everything it supplied after this instruction was discarded.
    fn on_redirect(&mut self, resolved: &Retired, meta: u64);

    /// Called in program order as each instruction dispatches (with its
    /// functional outcome already computed). Returns value-prediction
    /// hints for the issue timing model.
    fn on_dispatch(&mut self, rec: &Retired, meta: u64) -> DispatchHints {
        let _ = (rec, meta);
        DispatchHints::default()
    }

    /// Called in program order as each instruction retires.
    fn on_retire(&mut self, rec: &Retired, meta: u64) {
        let _ = (rec, meta);
    }

    /// Maximum instructions the core may retire this cycle beyond the
    /// machine's retire width (used to model delay-buffer back-pressure on
    /// the A-stream). Defaults to unlimited.
    fn retire_capacity(&mut self) -> usize {
        usize::MAX
    }

    /// Cycle-accounting hint: why the driver is withholding or throttling
    /// work right now. Sampled once at the top of each core cycle, before
    /// retire/fetch run; never read by any timing decision. Defaults to
    /// [`DriverStall::None`].
    fn stall_kind(&self) -> DriverStall {
        DriverStall::None
    }
}
