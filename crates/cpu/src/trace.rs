//! Flight-recorder tracing: typed pipeline events in a bounded ring.
//!
//! The sink lives in this lowest layer so every component of the machine —
//! the core itself, the slipstream front ends, and the harness — can record
//! into the same event vocabulary; higher layers (`slipstream_core::trace`)
//! add configuration, interval sampling, and multi-sink merging on top.
//!
//! Design contract (enforced by the call sites, tested end to end):
//!
//! - **Zero overhead when disabled.** Every record site is gated on an
//!   `Option<TraceSink>` owned by the component; a disabled trace costs one
//!   branch per event site and allocates nothing.
//! - **Bounded.** The ring keeps the last `capacity` events; older events
//!   are overwritten (and counted in [`TraceSink::dropped`]), so a
//!   flight-recorder trace of an arbitrarily long run uses constant memory.
//! - **Deterministic.** Events carry simulated cycles, never wall-clock
//!   time, so identical runs produce byte-identical traces regardless of
//!   host machine or worker count.

/// `seq` value for events not tied to a dispatched instruction (fetch-stage
/// events, machine-level events).
pub const NO_SEQ: u64 = u64::MAX;

/// Which part of the machine an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StreamId {
    /// The leading (reduced) slipstream core and its front end.
    AStream,
    /// The trailing (checking) slipstream core and its driver.
    RStream,
    /// A single superscalar baseline core.
    Single,
    /// Machine-level events (recovery, delay buffer, fault attribution).
    Machine,
}

impl StreamId {
    /// Short human-readable label (`A`, `R`, `S`, `M`).
    pub fn label(self) -> &'static str {
        match self {
            StreamId::AStream => "A",
            StreamId::RStream => "R",
            StreamId::Single => "S",
            StreamId::Machine => "M",
        }
    }
}

/// What happened. Kind-specific detail travels in [`TraceEvent::arg`]
/// (documented per variant) so events stay `Copy` and fixed-size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// An instruction entered the fetch queue (`seq` unknown yet).
    Fetch,
    /// An instruction dispatched into the ROB (functional execution
    /// happened here; `seq` is now assigned).
    Dispatch,
    /// An instruction issued to a function unit. `arg` = the cycle its
    /// execution completes.
    Issue,
    /// An instruction retired (left the ROB in program order).
    Retire,
    /// A conditional branch resolved against its prediction. `arg` = the
    /// actual next PC.
    BranchMispredict,
    /// An indirect/unconditional transfer resolved against its predicted
    /// target. `arg` = the actual next PC.
    JumpMispredict,
    /// Instruction-cache line miss (fetch stalls for the fill).
    IcacheMiss,
    /// Data-cache line miss. `arg` = the missing address.
    DcacheMiss,
    /// Shared-L2 miss (the line fills from memory). `arg` = the missing
    /// address.
    L2Miss,
    /// An L2 fill waited for a free memory-port slot. `arg` = the number
    /// of cycles it queued.
    PortStall,
    /// External pipeline flush (slipstream recovery squashed everything).
    Flush,
    /// The armed transient fault fired. `arg` = the flipped bit.
    FaultFired,
    /// The A-stream skipped (removed) this instruction. `arg` = the
    /// removal [`Reason`] bits.
    ///
    /// [`Reason`]: https://docs.rs/ (see `slipstream_core::removal::Reason`)
    Removed,
    /// An entry entered the delay buffer. `arg` = 1 if it is a skipped
    /// (data-less) marker, 0 if executed.
    DelayEnqueue,
    /// The R-stream consumed a delay-buffer entry. `arg` = entries left.
    DelayDequeue,
    /// An IR-misprediction was detected. `arg` = kind code (0 = value
    /// mismatch, 1 = control divergence, 2 = vec mismatch); `pc` = the
    /// offending PC (or trace start for vec mismatches).
    IrMispredict,
    /// Recovery ran: both pipelines flushed, A-stream context repaired.
    /// `arg` = the charged recovery latency in cycles.
    Recovery,
    /// Synthesized by traced fault experiments: the first detection event
    /// attributed to the injected fault. `arg` = fire-to-detect latency.
    FaultDetected,
}

impl EventKind {
    /// Stable lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Fetch => "fetch",
            EventKind::Dispatch => "dispatch",
            EventKind::Issue => "issue",
            EventKind::Retire => "retire",
            EventKind::BranchMispredict => "branch-mispredict",
            EventKind::JumpMispredict => "jump-mispredict",
            EventKind::IcacheMiss => "icache-miss",
            EventKind::DcacheMiss => "dcache-miss",
            EventKind::L2Miss => "l2-miss",
            EventKind::PortStall => "port-stall",
            EventKind::Flush => "flush",
            EventKind::FaultFired => "fault-fired",
            EventKind::Removed => "removed",
            EventKind::DelayEnqueue => "delay-enqueue",
            EventKind::DelayDequeue => "delay-dequeue",
            EventKind::IrMispredict => "ir-mispredict",
            EventKind::Recovery => "recovery",
            EventKind::FaultDetected => "fault-detected",
        }
    }
}

/// One recorded event. `Copy` and fixed-size so the ring is a flat buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle the event occurred.
    pub cycle: u64,
    /// Dispatch sequence number, or [`NO_SEQ`] when not applicable.
    pub seq: u64,
    /// Instruction (or trace-start) address, 0 when not applicable.
    pub pc: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub arg: u64,
    /// Which part of the machine recorded the event.
    pub stream: StreamId,
    /// What happened.
    pub kind: EventKind,
}

/// A bounded ring buffer of [`TraceEvent`]s — the flight recorder.
///
/// The owner sets the current cycle once per simulated cycle
/// ([`TraceSink::set_cycle`]); record sites then only pass
/// `(kind, seq, pc, arg)`.
#[derive(Debug, Clone)]
pub struct TraceSink {
    stream: StreamId,
    cap: usize,
    buf: Vec<TraceEvent>,
    /// Next overwrite position once the ring is full.
    next: usize,
    dropped: u64,
    cycle: u64,
    /// Events past this cycle are discarded (freeze the recorder shortly
    /// after an interesting moment to keep the window *around* it).
    freeze_after: Option<u64>,
}

impl TraceSink {
    /// Creates a sink keeping the last `capacity` events (min 1).
    pub fn new(stream: StreamId, capacity: usize) -> TraceSink {
        TraceSink {
            stream,
            cap: capacity.max(1),
            buf: Vec::new(),
            next: 0,
            dropped: 0,
            cycle: 0,
            freeze_after: None,
        }
    }

    /// The stream this sink records for.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// Sets the cycle stamped on subsequently recorded events.
    pub fn set_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    /// Stops recording for events past `cycle` — the ring then holds the
    /// last `capacity` events *up to* that point.
    pub fn freeze_after(&mut self, cycle: u64) {
        self.freeze_after = Some(cycle);
    }

    /// Records one event at the current cycle.
    #[inline]
    pub fn record(&mut self, kind: EventKind, seq: u64, pc: u64, arg: u64) {
        if self.freeze_after.is_some_and(|f| self.cycle > f) {
            return;
        }
        let e = TraceEvent {
            cycle: self.cycle,
            seq,
            pc,
            arg,
            stream: self.stream,
            kind,
        };
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.next] = e;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (older, newer) = self.buf.split_at(self.next.min(self.buf.len()));
        newer.iter().chain(older.iter())
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events have been recorded (or all were dropped).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (held + dropped).
    pub fn total_recorded(&self) -> u64 {
        self.buf.len() as u64 + self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_n(sink: &mut TraceSink, n: u64) {
        for i in 0..n {
            sink.set_cycle(i);
            sink.record(EventKind::Retire, i, 0x1000 + 4 * i, 0);
        }
    }

    #[test]
    fn ring_keeps_exactly_the_last_k_events_in_order() {
        let k = 8;
        let mut sink = TraceSink::new(StreamId::Single, k);
        push_n(&mut sink, 3 * k as u64);
        assert_eq!(sink.len(), k);
        assert_eq!(sink.dropped(), 2 * k as u64);
        assert_eq!(sink.total_recorded(), 3 * k as u64);
        let seqs: Vec<u64> = sink.events().map(|e| e.seq).collect();
        let want: Vec<u64> = (2 * k as u64..3 * k as u64).collect();
        assert_eq!(seqs, want, "ring holds the most recent K, oldest first");
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut sink = TraceSink::new(StreamId::AStream, 16);
        push_n(&mut sink, 5);
        assert_eq!(sink.len(), 5);
        assert_eq!(sink.dropped(), 0);
        let cycles: Vec<u64> = sink.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wraparound_is_exact_at_every_fill_level() {
        // Wraparound boundary sweep: for every total 1..=3K the ring holds
        // the last min(total, K) events in order.
        let k = 4;
        for total in 1..=(3 * k as u64) {
            let mut sink = TraceSink::new(StreamId::RStream, k);
            push_n(&mut sink, total);
            let held: Vec<u64> = sink.events().map(|e| e.seq).collect();
            let start = total.saturating_sub(k as u64);
            let want: Vec<u64> = (start..total).collect();
            assert_eq!(held, want, "total={total}");
        }
    }

    #[test]
    fn freeze_discards_later_events() {
        let mut sink = TraceSink::new(StreamId::Machine, 64);
        sink.freeze_after(10);
        push_n(&mut sink, 20);
        assert_eq!(sink.len(), 11, "cycles 0..=10 recorded, rest frozen out");
        assert!(sink.events().all(|e| e.cycle <= 10));
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let mut sink = TraceSink::new(StreamId::Single, 0);
        push_n(&mut sink, 3);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.events().next().unwrap().cycle, 2);
    }
}
