//! Cycle-level out-of-order superscalar core model.
//!
//! This crate reproduces the paper's base processor (Table 2): a 4-wide
//! out-of-order core with a 64-entry reorder buffer, 64 KB 4-way LRU
//! instruction/data caches, symmetric function units with MIPS
//! R10000-style latencies, and wide interleaved fetch that can pass
//! multiple not-taken branches per cycle.
//!
//! The defining structural choice is that a [`Core`] has **no opinion about
//! control flow**: a [`CoreDriver`] supplies [`FetchItem`]s along the
//! predicted path, observes dispatches/retirements, and is redirected when
//! the core detects that an instruction's real outcome diverges from the
//! predicted path. One core implementation therefore serves:
//!
//! - the SS(64x4) and SS(128x8) superscalar baselines (trace-predictor
//!   front end),
//! - the slipstream **A-stream** (IR-predictor front end that skips
//!   predicted-removable instructions), and
//! - the slipstream **R-stream** (delay-buffer front end with value
//!   predictions merged at dispatch).
//!
//! Functional execution happens in program order at dispatch against the
//! core's private speculative state (registers plus a store-queue overlay
//! over its private memory image), so the core produces *real values* —
//! including wrong ones when the A-stream's context is corrupted, which is
//! exactly the behaviour slipstream recovery exists to handle.
//!
//! # Example: run a program on the paper's base core
//!
//! ```
//! use slipstream_cpu::{Core, CoreConfig, OracleDriver};
//! use slipstream_isa::assemble;
//!
//! let p = assemble("li r1, 100\nloop:\naddi r1, r1, -1\nbne r1, r0, loop\nhalt")?;
//! let mut core = Core::new(CoreConfig::ss_64x4(), p.initial_memory());
//! let mut driver = OracleDriver::new(&p);
//! let mut retired = Vec::new(); // reused every cycle — the loop never allocates
//! while !core.halted() {
//!     core.cycle(&mut driver, &mut retired);
//! }
//! assert!(core.stats().ipc() > 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
mod cache;
mod config;
mod driver;
mod drivers;
mod l2;
mod pipeline;
mod stats;
mod trace;

pub use accounting::{CpiCat, CpiStack};
pub use cache::{Cache, CacheConfig};
pub use config::CoreConfig;
pub use driver::{CoreDriver, DispatchHints, DriverStall, FetchBlock, FetchItem};
pub use drivers::{OracleDriver, StaticDriver};
pub use l2::{merge_l2_logs, L2Access, L2Config, L2Outcome, L2View};
pub use pipeline::{Core, FaultSpec};
pub use stats::CoreStats;
pub use trace::{EventKind, StreamId, TraceEvent, TraceSink, NO_SEQ};
