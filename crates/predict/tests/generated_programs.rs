//! Predictor coverage driven by generated programs: the resetting
//! confidence counter's saturation/reset edges, and path-history hashing
//! over real trace streams (built by retiring seeded `random_program`s
//! through the functional simulator), rather than only indirectly through
//! end-to-end slipstream runs.

use slipstream_isa::{ArchState, Program};
use slipstream_predict::{PathHistory, ResettingCounter, TraceBuilder, TraceId, TracePredictor};
use slipstream_workloads::{random_program, RandProgConfig};

// ---- resetting-counter edges ----------------------------------------------

#[test]
fn threshold_one_asserts_after_a_single_hit_and_recovers_after_reset() {
    let mut c = ResettingCounter::new(1);
    assert!(!c.confident());
    c.hit();
    assert!(c.confident());
    c.miss();
    assert!(!c.confident());
    assert_eq!(c.value(), 0);
    c.hit();
    assert!(
        c.confident(),
        "one hit must re-establish threshold-1 confidence"
    );
}

#[test]
fn alternating_hit_miss_never_reaches_a_threshold_of_two() {
    let mut c = ResettingCounter::new(2);
    for _ in 0..100 {
        c.hit();
        assert!(
            !c.confident(),
            "a single hit after a reset is not confidence"
        );
        c.miss();
        assert_eq!(c.value(), 0);
    }
}

#[test]
fn zero_threshold_counter_saturates_at_one() {
    // threshold 0 is always confident; its value still saturates (at 1,
    // the `threshold.max(1)` floor) instead of growing without bound.
    let mut c = ResettingCounter::new(0);
    assert!(c.confident());
    for _ in 0..10 {
        c.hit();
        assert!(c.confident());
    }
    assert_eq!(c.value(), 1);
}

#[test]
fn miss_exactly_at_threshold_forfeits_all_progress() {
    // The paper's IR-predictor semantics (threshold 32): one detector
    // disagreement forfeits all accumulated confidence, and the full run
    // of consecutive hits must be re-earned.
    let mut c = ResettingCounter::new(32);
    for _ in 0..32 {
        c.hit();
    }
    assert!(c.confident());
    assert_eq!(c.value(), 32, "value saturates at the threshold");
    c.miss();
    for i in 0..32 {
        assert!(!c.confident(), "still rebuilding after {i} hits");
        c.hit();
    }
    assert!(c.confident());
}

// ---- path hashing over generated trace streams ----------------------------

fn small_prog(seed: u64) -> Program {
    random_program(
        seed,
        RandProgConfig {
            chunks: 6,
            ..RandProgConfig::default()
        },
    )
}

/// Retires `program` through the functional simulator and segments the
/// dynamic stream into trace ids.
fn trace_stream(program: &Program) -> Vec<TraceId> {
    let mut st = ArchState::new(program);
    let retired = st
        .run(program, 3_000_000)
        .expect("generated programs terminate");
    let mut b = TraceBuilder::new();
    let mut ids = Vec::new();
    for r in &retired {
        if let Some(id) = b.push(r.pc, &r.instr, r.taken) {
            ids.push(id);
        }
    }
    ids.extend(b.flush());
    ids
}

#[test]
fn context_hash_is_a_pure_function_of_the_trace_stream() {
    for seed in [1u64, 42, 0xdead] {
        let p = small_prog(seed);
        let ids = trace_stream(&p);
        assert!(
            ids.len() >= 2,
            "seed {seed}: stream too short to be interesting"
        );
        let hashes = |ids: &[TraceId]| -> Vec<u64> {
            let mut h = PathHistory::new(8);
            ids.iter()
                .map(|&id| {
                    h.push(id);
                    h.context_hash()
                })
                .collect()
        };
        // Re-running the same program yields the same stream and hashes.
        assert_eq!(hashes(&ids), hashes(&trace_stream(&p)));
    }
}

#[test]
fn context_hash_separates_different_programs_and_depths() {
    let mut final_hashes = Vec::new();
    for seed in [1u64, 2, 3, 4, 5] {
        let ids = trace_stream(&small_prog(seed));
        let mut h = PathHistory::new(8);
        for id in ids {
            h.push(id);
        }
        final_hashes.push(h.context_hash());
    }
    final_hashes.sort_unstable();
    final_hashes.dedup();
    assert_eq!(
        final_hashes.len(),
        5,
        "five seeds must land in five contexts"
    );

    // Depth sensitivity: the same stream folded into shallower histories
    // hashes differently (older context genuinely participates).
    let ids = trace_stream(&small_prog(9));
    let fold = |cap: usize| {
        let mut h = PathHistory::new(cap);
        for &id in &ids {
            h.push(id);
        }
        h.context_hash()
    };
    assert_ne!(fold(2), fold(8));
}

#[test]
fn speculative_push_then_pop_restores_the_context() {
    let ids = trace_stream(&small_prog(17));
    let mut h = PathHistory::new(8);
    for &id in &ids {
        h.push(id);
    }
    let before = h.context_hash();
    let junk = TraceId {
        start_pc: 0xffff_0000,
        outcomes: 0x15,
        branch_count: 5,
        len: 32,
    };
    h.push(junk);
    assert_ne!(
        h.context_hash(),
        before,
        "speculation must move the context"
    );
    h.pop_recent();
    assert_eq!(h.context_hash(), before, "undo must restore it exactly");
}

#[test]
fn predictor_learns_a_generated_programs_trace_stream() {
    // A generated program's dynamic trace stream is (by construction)
    // deterministic; replaying it several times must drive the hybrid
    // predictor to high accuracy on the final pass — this is the
    // steady-state the paper's Table 3 front ends operate in.
    let ids = trace_stream(&small_prog(23));
    let mut pred = TracePredictor::default();
    let mut hist = pred.new_history();
    let reps = 8;
    let mut last_correct = 0u64;
    for rep in 0..reps {
        for &id in &ids {
            let p = pred.predict(&hist);
            if rep + 1 == reps && p == Some(id) {
                last_correct += 1;
            }
            pred.update(&hist, id);
            hist.push(id);
        }
    }
    let acc = last_correct as f64 / ids.len() as f64;
    assert!(
        acc >= 0.9,
        "steady-state accuracy {acc:.2} on {} traces is too low",
        ids.len()
    );
    let s = pred.stats();
    assert_eq!(s.traces, reps as u64 * ids.len() as u64);
    assert!(
        s.from_correlated > 0,
        "the path table must serve predictions"
    );
}
