//! Control-flow prediction substrate for the slipstream reproduction.
//!
//! The paper builds its IR-predictor "on top of a conventional trace
//! predictor" (Jacobson, Rotenberg, Smith — *Path-Based Next Trace
//! Prediction*) and uses resetting confidence counters (Jacobsen,
//! Rotenberg, Smith — *Assigning Confidence to Conditional Branch
//! Predictions*). Both are reproduced here, along with conventional
//! single-branch predictors used for ablations:
//!
//! - [`TraceId`], [`TraceBuilder`], [`materialize`] — the trace abstraction:
//!   a trace is up to 32 dynamic instructions identified by a start PC and
//!   embedded conditional-branch outcomes; indirect jumps and `halt` end a
//!   trace (their successor is captured by the *next* trace's start PC).
//! - [`TracePredictor`] — the hybrid path-based next-trace predictor
//!   (2^16-entry correlated table over the last 8 trace ids + 2^16-entry
//!   simple table over the last trace id), with speculative history and
//!   recovery, and modelled delayed update (updates happen at trace
//!   retirement, as in the paper's §5).
//! - [`ResettingCounter`] — the confidence mechanism the IR-predictor uses
//!   to gate instruction removal.
//! - [`Bimodal`], [`Gshare`], [`Btb`], [`ReturnStack`] — conventional
//!   predictors for comparison experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod confidence;
mod trace;
mod trace_pred;

pub use branch::{Bimodal, Btb, Gshare, ReturnStack};
pub use confidence::ResettingCounter;
pub use trace::{
    materialize, materialize_into, MaterializedTrace, TraceBuilder, TraceId, MAX_TRACE_LEN,
};
pub use trace_pred::{PathHistory, TracePredictor, TracePredictorConfig, TracePredictorStats};
