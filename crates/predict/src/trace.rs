use slipstream_isa::{Instr, InstrKind, Program};

/// Maximum trace length in instructions (the paper uses length-32 traces
/// throughout: IR-predictor entries, R-DFG size, ir-vec width).
pub const MAX_TRACE_LEN: usize = 32;

/// A trace identifier: start PC plus the taken/not-taken outcomes of the
/// embedded conditional branches, exactly as in the paper's §2.1.1
/// ("a trace is uniquely identified by a starting PC and branch outcomes
/// indicating the path through the trace").
///
/// Given the program, a `TraceId` deterministically denotes a sequence of
/// up to 32 dynamic instructions (see [`materialize`]). Traces end early at
/// indirect jumps (`jr`) and `halt`, whose successors a trace id cannot
/// encode; the successor is captured by the next trace's start PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceId {
    /// PC of the first instruction in the trace.
    pub start_pc: u64,
    /// Embedded conditional-branch outcomes, least-significant bit first
    /// (bit i = outcome of the i-th conditional branch; 1 = taken).
    pub outcomes: u32,
    /// Number of embedded conditional branches (≤ 32).
    pub branch_count: u8,
    /// Trace length in instructions (1..=32).
    pub len: u8,
}

impl TraceId {
    /// A stable 64-bit hash of the id, used to build predictor path
    /// histories and table indices.
    pub fn hash64(&self) -> u64 {
        // SplitMix64-style mixing of the three components.
        let mut z = self
            .start_pc
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((self.outcomes as u64) << 8)
            .wrapping_add(self.branch_count as u64)
            .wrapping_add((self.len as u64) << 40);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The outcome of the `i`-th embedded conditional branch.
    pub fn outcome(&self, i: usize) -> bool {
        (self.outcomes >> i) & 1 == 1
    }
}

/// Whether `instr` must terminate the trace it appears in (its successor
/// cannot be encoded in a trace id, or the program ends).
fn ends_trace(instr: &Instr) -> bool {
    matches!(instr.kind(), InstrKind::Halt) || matches!(instr, Instr::Jr { .. })
}

/// Incrementally builds [`TraceId`]s from a retired instruction stream.
///
/// All components that need a trace view of the dynamic stream (trace
/// predictor update, IR-detector scope, statistics) share this single
/// selection policy, which is what the paper calls a "consistent (static)
/// trace selection policy" — a prerequisite for accurate trace prediction.
///
/// ```
/// use slipstream_predict::TraceBuilder;
/// use slipstream_isa::{assemble, ArchState};
/// let p = assemble("li r1, 40\nloop:\naddi r1, r1, -1\nbne r1, r0, loop\nhalt")?;
/// let mut st = ArchState::new(&p);
/// let mut tb = TraceBuilder::new();
/// let mut traces = Vec::new();
/// for rec in st.run(&p, 1_000)? {
///     if let Some(t) = tb.push(rec.pc, &rec.instr, rec.taken) {
///         traces.push(t);
///     }
/// }
/// if let Some(t) = tb.flush() { traces.push(t); }
/// assert_eq!(traces.iter().map(|t| t.len as u64).sum::<u64>(), st.retired());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    current: Option<TraceId>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Adds one retired instruction; returns a completed trace id when this
    /// instruction fills or terminates the current trace.
    ///
    /// `taken` must be `Some` exactly for conditional branches.
    pub fn push(&mut self, pc: u64, instr: &Instr, taken: Option<bool>) -> Option<TraceId> {
        let cur = self.current.get_or_insert(TraceId {
            start_pc: pc,
            outcomes: 0,
            branch_count: 0,
            len: 0,
        });
        if let Some(t) = taken {
            if t {
                cur.outcomes |= 1 << cur.branch_count;
            }
            cur.branch_count += 1;
        }
        cur.len += 1;
        if cur.len as usize >= MAX_TRACE_LEN || ends_trace(instr) {
            return self.current.take();
        }
        None
    }

    /// Completes and returns the in-progress partial trace, if any.
    pub fn flush(&mut self) -> Option<TraceId> {
        self.current.take()
    }

    /// Length of the in-progress trace (0 if none).
    pub fn pending_len(&self) -> usize {
        self.current.map_or(0, |t| t.len as usize)
    }
}

/// A trace id resolved against the program text: the concrete dynamic
/// instruction sequence it denotes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterializedTrace {
    /// The id this was materialized from.
    pub id: TraceId,
    /// PCs of the instructions in the trace, in dynamic order.
    pub pcs: Vec<u64>,
    /// PC of the instruction after the trace, or `None` when the trace ends
    /// at an indirect jump (`jr`) or `halt` — the successor then comes from
    /// the next trace prediction.
    pub next_pc: Option<u64>,
}

/// Walks the program text along `id`'s path, recovering the instruction
/// sequence the id denotes.
///
/// Returns `None` if the id is inconsistent with the program (walks off the
/// text segment, or runs out of branch-outcome bits before the trace ends)
/// — a stale or aliased predictor entry. Callers treat that as "no
/// prediction".
pub fn materialize(program: &Program, id: TraceId) -> Option<MaterializedTrace> {
    let mut pcs = Vec::with_capacity(id.len as usize);
    let next_pc = materialize_into(program, id, &mut pcs)?;
    Some(MaterializedTrace { id, pcs, next_pc })
}

/// Allocation-free [`materialize`]: fills the caller-provided `pcs` buffer
/// (cleared first) and returns the trace's successor PC on success.
///
/// The A-stream front end fetches a trace every few cycles for the whole
/// run; reusing one buffer there keeps trace fetch off the allocator.
/// Returns `None` — with `pcs` contents unspecified — under the same
/// conditions as [`materialize`].
pub fn materialize_into(program: &Program, id: TraceId, pcs: &mut Vec<u64>) -> Option<Option<u64>> {
    pcs.clear();
    let mut pc = id.start_pc;
    let mut branch_idx = 0usize;
    let mut next_pc = None;
    for i in 0..id.len {
        let instr = program.instr_at(pc)?;
        pcs.push(pc);
        let fall = pc + 4;
        let following = match instr {
            Instr::Beq { target, .. }
            | Instr::Bne { target, .. }
            | Instr::Blt { target, .. }
            | Instr::Bge { target, .. } => {
                if branch_idx >= id.branch_count as usize {
                    return None;
                }
                let taken = id.outcome(branch_idx);
                branch_idx += 1;
                if taken {
                    *target
                } else {
                    fall
                }
            }
            Instr::J { target } | Instr::Jal { target, .. } => *target,
            Instr::Jr { .. } | Instr::Halt => {
                // Must be the last instruction of the trace.
                if i + 1 != id.len {
                    return None;
                }
                break;
            }
            _ => fall,
        };
        if i + 1 == id.len {
            next_pc = Some(following);
        } else {
            pc = following;
        }
    }
    if pcs.len() != id.len as usize || branch_idx != id.branch_count as usize {
        return None;
    }
    Some(next_pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_isa::{assemble, ArchState};

    fn traces_of(src: &str, fuel: u64) -> (Vec<TraceId>, slipstream_isa::Program) {
        let p = assemble(src).unwrap();
        let mut st = ArchState::new(&p);
        let mut tb = TraceBuilder::new();
        let mut out = Vec::new();
        for rec in st.run(&p, fuel).unwrap() {
            if let Some(t) = tb.push(rec.pc, &rec.instr, rec.taken) {
                out.push(t);
            }
        }
        if let Some(t) = tb.flush() {
            out.push(t);
        }
        (out, p)
    }

    #[test]
    fn straight_line_code_makes_one_trace() {
        let (traces, _) = traces_of("li r1, 1\nli r2, 2\nadd r3, r1, r2\nhalt", 100);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].len, 4);
        assert_eq!(traces[0].branch_count, 0);
        assert_eq!(traces[0].start_pc, 0x1000);
    }

    #[test]
    fn traces_cap_at_32_instructions() {
        let body = "addi r1, r1, 1\n".repeat(40);
        let (traces, _) = traces_of(&format!("{body}halt"), 1000);
        assert_eq!(traces[0].len as usize, MAX_TRACE_LEN);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[1].len, 9); // 8 remaining addi + halt
    }

    #[test]
    fn branch_outcomes_recorded_in_order() {
        // 5-iteration loop: bne taken 4x then not-taken.
        let (traces, _) = traces_of(
            "li r1, 5\nloop:\naddi r1, r1, -1\nbne r1, r0, loop\nhalt",
            100,
        );
        // Dynamic stream: li, (addi, bne)*5, halt = 12 instrs → 1 trace.
        assert_eq!(traces.len(), 1);
        let t = traces[0];
        assert_eq!(t.len, 12);
        assert_eq!(t.branch_count, 5);
        assert_eq!(t.outcomes & 0b11111, 0b01111); // 4 taken then 1 not-taken
    }

    #[test]
    fn jr_terminates_a_trace() {
        let (traces, _) = traces_of("jal r31, f\nli r2, 2\nhalt\nf:\nli r1, 1\njr r31", 100);
        // jal, li, jr | li, halt
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].len, 3);
        assert!(traces[1].start_pc > 0);
    }

    #[test]
    fn materialize_round_trips_the_dynamic_stream() {
        let src = "li r1, 20\nli r3, 0\nloop:\nandi r2, r1, 1\nbeq r2, r0, even\naddi r3, r3, 1\neven:\naddi r1, r1, -1\nbne r1, r0, loop\nhalt";
        let p = assemble(src).unwrap();
        let mut st = ArchState::new(&p);
        let mut tb = TraceBuilder::new();
        let mut dynamic_pcs = Vec::new();
        let mut traces = Vec::new();
        for rec in st.run(&p, 10_000).unwrap() {
            dynamic_pcs.push(rec.pc);
            if let Some(t) = tb.push(rec.pc, &rec.instr, rec.taken) {
                traces.push(t);
            }
        }
        if let Some(t) = tb.flush() {
            traces.push(t);
        }
        let mut rebuilt = Vec::new();
        for t in traces {
            let m = materialize(&p, t).expect("constructed traces always materialize");
            rebuilt.extend(m.pcs);
        }
        assert_eq!(rebuilt, dynamic_pcs);
    }

    #[test]
    fn materialize_provides_next_pc_for_fallthrough_traces() {
        let body = "addi r1, r1, 1\n".repeat(40);
        let (traces, p) = traces_of(&format!("{body}halt"), 1000);
        let m = materialize(&p, traces[0]).unwrap();
        assert_eq!(m.next_pc, Some(0x1000 + 32 * 4));
        let last = materialize(&p, traces[1]).unwrap();
        assert_eq!(last.next_pc, None); // ends at halt
    }

    #[test]
    fn materialize_rejects_inconsistent_ids() {
        let p = assemble("nop\nhalt").unwrap();
        // Claims 5 instructions but text has 2 then halt.
        let bogus = TraceId {
            start_pc: 0x1000,
            outcomes: 0,
            branch_count: 0,
            len: 5,
        };
        assert_eq!(materialize(&p, bogus), None);
        // Claims a branch where there is none.
        let bogus2 = TraceId {
            start_pc: 0x1000,
            outcomes: 1,
            branch_count: 1,
            len: 2,
        };
        assert_eq!(materialize(&p, bogus2), None);
        // Walks off the text segment.
        let bogus3 = TraceId {
            start_pc: 0x9000,
            outcomes: 0,
            branch_count: 0,
            len: 1,
        };
        assert_eq!(materialize(&p, bogus3), None);
    }

    #[test]
    fn hash_is_stable_and_distinguishes() {
        let a = TraceId {
            start_pc: 0x1000,
            outcomes: 0b101,
            branch_count: 3,
            len: 10,
        };
        let b = TraceId {
            start_pc: 0x1000,
            outcomes: 0b111,
            branch_count: 3,
            len: 10,
        };
        assert_eq!(a.hash64(), a.hash64());
        assert_ne!(a.hash64(), b.hash64());
    }

    #[test]
    fn pending_len_tracks_partial_trace() {
        let mut tb = TraceBuilder::new();
        assert_eq!(tb.pending_len(), 0);
        tb.push(0x1000, &Instr::Nop, None);
        tb.push(0x1004, &Instr::Nop, None);
        assert_eq!(tb.pending_len(), 2);
        assert_eq!(tb.flush().unwrap().len, 2);
        assert_eq!(tb.pending_len(), 0);
    }
}
