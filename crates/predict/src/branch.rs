//! Conventional single-branch prediction components.
//!
//! The slipstream models in the paper drive fetch with the trace predictor,
//! but every constituent processor still *has* a conventional branch
//! predictor (Figure 1 shows it disconnected by a switch). These
//! implementations back the ablation experiments that compare trace-based
//! and conventional prediction, and serve as baselines in tests.

/// A table of 2-bit saturating counters indexed by PC (bimodal predictor).
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<u8>,
    mask: usize,
}

impl Bimodal {
    /// Creates a predictor with `2^bits` counters, initialised weakly
    /// not-taken.
    pub fn new(bits: u32) -> Bimodal {
        Bimodal {
            table: vec![1; 1 << bits],
            mask: (1 << bits) - 1,
        }
    }

    fn idx(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.mask
    }

    /// Predicts the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.idx(pc)] >= 2
    }

    /// Trains with the resolved outcome.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.idx(pc);
        let c = &mut self.table[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// Gshare: 2-bit counters indexed by `PC ⊕ global history`.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    mask: usize,
    history: u64,
    hist_bits: u32,
}

impl Gshare {
    /// Creates a gshare predictor with `2^bits` counters and `hist_bits` of
    /// global history (`hist_bits ≤ bits` is typical).
    pub fn new(bits: u32, hist_bits: u32) -> Gshare {
        Gshare {
            table: vec![1; 1 << bits],
            mask: (1 << bits) - 1,
            history: 0,
            hist_bits,
        }
    }

    fn idx(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) as usize) & self.mask
    }

    /// Predicts the branch at `pc` under the current global history.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.idx(pc)] >= 2
    }

    /// Trains with the resolved outcome and shifts it into the history.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.idx(pc);
        let c = &mut self.table[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.hist_bits) - 1);
    }
}

/// A tagged branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (pc, target)
    mask: usize,
}

impl Btb {
    /// Creates a BTB with `2^bits` entries.
    pub fn new(bits: u32) -> Btb {
        Btb {
            entries: vec![None; 1 << bits],
            mask: (1 << bits) - 1,
        }
    }

    fn idx(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.mask
    }

    /// The cached target for the control instruction at `pc`, if present.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        match self.entries[self.idx(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Records a resolved target.
    pub fn update(&mut self, pc: u64, target: u64) {
        let i = self.idx(pc);
        self.entries[i] = Some((pc, target));
    }
}

/// A bounded return-address stack for `jal`/`jr` pairs.
#[derive(Debug, Clone)]
pub struct ReturnStack {
    stack: Vec<u64>,
    cap: usize,
}

impl ReturnStack {
    /// Creates a stack holding up to `cap` return addresses.
    pub fn new(cap: usize) -> ReturnStack {
        ReturnStack {
            stack: Vec::with_capacity(cap),
            cap,
        }
    }

    /// Pushes a return address (on `jal`); the oldest entry is dropped when
    /// full.
    pub fn push(&mut self, ret: u64) {
        if self.stack.len() == self.cap {
            self.stack.remove(0);
        }
        self.stack.push(ret);
    }

    /// Pops the predicted return address (on `jr`).
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_a_bias() {
        let mut p = Bimodal::new(10);
        for _ in 0..4 {
            p.update(0x1000, true);
        }
        assert!(p.predict(0x1000));
        for _ in 0..4 {
            p.update(0x1000, false);
        }
        assert!(!p.predict(0x1000));
    }

    #[test]
    fn bimodal_cannot_learn_alternation() {
        let mut p = Bimodal::new(10);
        let mut correct = 0;
        let mut taken = true;
        for _ in 0..100 {
            if p.predict(0x1000) == taken {
                correct += 1;
            }
            p.update(0x1000, taken);
            taken = !taken;
        }
        assert!(
            correct < 60,
            "bimodal should do badly on alternation, got {correct}"
        );
    }

    #[test]
    fn gshare_learns_alternation_via_history() {
        let mut p = Gshare::new(12, 8);
        let mut taken = true;
        // warm up
        for _ in 0..64 {
            p.update(0x1000, taken);
            taken = !taken;
        }
        let mut correct = 0;
        for _ in 0..100 {
            if p.predict(0x1000) == taken {
                correct += 1;
            }
            p.update(0x1000, taken);
            taken = !taken;
        }
        assert!(
            correct > 95,
            "gshare should learn alternation, got {correct}"
        );
    }

    #[test]
    fn btb_round_trip_and_tag_check() {
        let mut btb = Btb::new(8);
        assert_eq!(btb.lookup(0x1000), None);
        btb.update(0x1000, 0x2000);
        assert_eq!(btb.lookup(0x1000), Some(0x2000));
        // A different PC aliasing the same set must miss on the tag.
        let alias = 0x1000 + (1u64 << (8 + 2));
        assert_eq!(btb.lookup(alias), None);
    }

    #[test]
    fn return_stack_lifo_and_overflow() {
        let mut ras = ReturnStack::new(2);
        ras.push(0x10);
        ras.push(0x20);
        ras.push(0x30); // evicts 0x10
        assert_eq!(ras.pop(), Some(0x30));
        assert_eq!(ras.pop(), Some(0x20));
        assert_eq!(ras.pop(), None);
        assert!(ras.is_empty());
    }
}
