/// A resetting confidence counter (Jacobsen, Rotenberg, Smith, MICRO-29).
///
/// The counter increments on every correct event and *resets to zero* on
/// any incorrect event; confidence is asserted only once the counter
/// reaches its threshold. The paper attaches one of these to every
/// IR-predictor entry with a threshold of 32: a trace's instruction-removal
/// information is only acted upon after the IR-detector has produced the
/// same `{trace-id, ir-vec}` pair 32 times in a row, which is what drives
/// the measured IR-misprediction rate below 0.05 per 1000 instructions.
///
/// ```
/// use slipstream_predict::ResettingCounter;
/// let mut c = ResettingCounter::new(3);
/// c.hit(); c.hit();
/// assert!(!c.confident());
/// c.hit();
/// assert!(c.confident());
/// c.miss(); // any disagreement resets
/// assert!(!c.confident());
/// assert_eq!(c.value(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResettingCounter {
    value: u32,
    threshold: u32,
}

impl ResettingCounter {
    /// Creates a counter that asserts confidence at `threshold` consecutive
    /// hits. A threshold of 0 is always confident.
    pub fn new(threshold: u32) -> ResettingCounter {
        ResettingCounter {
            value: 0,
            threshold,
        }
    }

    /// Records a correct event (saturates at the threshold).
    pub fn hit(&mut self) {
        self.value = self.value.saturating_add(1).min(self.threshold.max(1));
    }

    /// Records an incorrect event: resets to zero.
    pub fn miss(&mut self) {
        self.value = 0;
    }

    /// Whether the confidence threshold has been reached.
    pub fn confident(&self) -> bool {
        self.value >= self.threshold
    }

    /// Current counter value.
    pub fn value(&self) -> u32 {
        self.value
    }

    /// The configured threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaches_confidence_after_threshold_hits() {
        let mut c = ResettingCounter::new(32);
        for _ in 0..31 {
            c.hit();
            assert!(!c.confident());
        }
        c.hit();
        assert!(c.confident());
    }

    #[test]
    fn miss_resets_to_zero() {
        let mut c = ResettingCounter::new(4);
        for _ in 0..4 {
            c.hit();
        }
        assert!(c.confident());
        c.miss();
        assert_eq!(c.value(), 0);
        assert!(!c.confident());
        // Must earn all 4 again.
        c.hit();
        c.hit();
        c.hit();
        assert!(!c.confident());
        c.hit();
        assert!(c.confident());
    }

    #[test]
    fn zero_threshold_is_always_confident() {
        let c = ResettingCounter::new(0);
        assert!(c.confident());
    }

    #[test]
    fn value_saturates_at_threshold() {
        let mut c = ResettingCounter::new(2);
        for _ in 0..10 {
            c.hit();
        }
        assert_eq!(c.value(), 2);
    }
}
