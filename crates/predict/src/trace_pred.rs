use std::collections::VecDeque;

use crate::trace::TraceId;

/// Configuration for [`TracePredictor`] (defaults follow paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePredictorConfig {
    /// log2 of the correlated (path-based) table size. Paper: 16.
    pub correlated_bits: u32,
    /// log2 of the simple (last-trace) table size. Paper: 16.
    pub simple_bits: u32,
    /// Number of trace ids in the path history. Paper: 8.
    pub path_len: usize,
}

impl Default for TracePredictorConfig {
    fn default() -> Self {
        TracePredictorConfig {
            correlated_bits: 16,
            simple_bits: 16,
            path_len: 8,
        }
    }
}

/// A bounded path history of trace-id hashes.
///
/// The predictor itself is stateless with respect to history: callers own
/// one or more `PathHistory` values and pass them to
/// [`TracePredictor::predict`] / [`TracePredictor::update`]. A superscalar
/// front end keeps two (speculative and committed); a slipstream processor
/// keeps three (A-stream speculative, A-stream retired, R-stream
/// committed) and re-synchronizes them at mispredictions and recoveries.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct PathHistory {
    ids: VecDeque<u64>,
    cap: usize,
}

// Hand-written so `clone_from` reuses the destination's ring buffer: the
// slack-window scheduler snapshots histories every window, and the
// derived impl would re-allocate each time.
impl Clone for PathHistory {
    fn clone(&self) -> PathHistory {
        PathHistory {
            ids: self.ids.clone(),
            cap: self.cap,
        }
    }

    fn clone_from(&mut self, src: &PathHistory) {
        self.ids.clone_from(&src.ids);
        self.cap = src.cap;
    }
}

impl PathHistory {
    /// An empty history holding up to `cap` trace ids.
    pub fn new(cap: usize) -> PathHistory {
        PathHistory {
            ids: VecDeque::with_capacity(cap + 1),
            cap,
        }
    }

    /// Appends a trace to the history (oldest entry falls off).
    pub fn push(&mut self, id: TraceId) {
        self.ids.push_back(id.hash64());
        while self.ids.len() > self.cap {
            self.ids.pop_front();
        }
    }

    /// Re-synchronizes this history to another (e.g. speculative :=
    /// committed on a flush).
    pub fn sync_to(&mut self, other: &PathHistory) {
        self.ids.clone_from(&other.ids);
        self.cap = other.cap;
    }

    /// Removes the most recent entry (undoing a speculative push for a
    /// trace that was squashed before executing).
    pub fn pop_recent(&mut self) {
        self.ids.pop_back();
    }

    /// Replaces the oldest occurrence of `old` with `new` (reconciling a
    /// speculatively-pushed trace id with the id that actually retired).
    /// Returns whether a replacement happened.
    pub fn replace_oldest(&mut self, old: TraceId, new: TraceId) -> bool {
        let oh = old.hash64();
        if let Some(slot) = self.ids.iter_mut().find(|h| **h == oh) {
            *slot = new.hash64();
            true
        } else {
            false
        }
    }

    /// A stable hash of the whole history (most recent ids weighted
    /// hardest) — the context key under which path-indexed structures such
    /// as the IR-predictor's removal entries are stored.
    pub fn context_hash(&self) -> u64 {
        let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
        for (age, h) in self.ids.iter().rev().enumerate() {
            acc ^= h >> (age as u32 * 5);
            acc = acc.rotate_left(13);
        }
        acc
    }

    /// Number of traces currently in the history.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    fn iter_newest_first(&self) -> impl Iterator<Item = &u64> {
        self.ids.iter().rev()
    }

    fn newest(&self) -> Option<u64> {
        self.ids.back().copied()
    }
}

/// Running accuracy counters for a [`TracePredictor`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TracePredictorStats {
    /// Completed traces recorded via [`TracePredictor::update`].
    pub traces: u64,
    /// Predictions served by the correlated (path) table.
    pub from_correlated: u64,
    /// Predictions served by the simple (last-trace) table.
    pub from_simple: u64,
    /// Lookups with no table hit.
    pub no_prediction: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u16,
    pred: TraceId,
    /// 2-bit replacement counter (paper §2.1.1).
    ctr: u8,
}

/// Hybrid path-based next-trace predictor (Jacobson, Rotenberg, Smith —
/// "Path-Based Next Trace Prediction", MICRO-30), as used by the paper for
/// control-flow prediction in *all* processor models and as the foundation
/// of the IR-predictor.
///
/// Two tables: a **correlated** table indexed by a hash of the last 8 trace
/// ids (recent ids contribute more index bits than older ones) and a
/// **simple** table indexed by the most recent trace id only (shorter
/// learning time, less aliasing pressure). Both are tagged and use 2-bit
/// replacement counters; the correlated table takes priority on a hit.
///
/// Histories live *outside* the predictor (see [`PathHistory`]); updates
/// are performed by the caller at trace retirement, so the *delayed
/// update* effect the paper measures (Table 3) arises naturally from how
/// far retirement lags fetch.
#[derive(Debug, Clone)]
pub struct TracePredictor {
    cfg: TracePredictorConfig,
    correlated: Vec<Option<Entry>>,
    simple: Vec<Option<Entry>>,
    stats: TracePredictorStats,
}

impl TracePredictor {
    /// Creates a predictor with the given table configuration.
    pub fn new(cfg: TracePredictorConfig) -> TracePredictor {
        TracePredictor {
            cfg,
            correlated: vec![None; 1 << cfg.correlated_bits],
            simple: vec![None; 1 << cfg.simple_bits],
            stats: TracePredictorStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> TracePredictorConfig {
        self.cfg
    }

    /// A history sized to this predictor's path length.
    pub fn new_history(&self) -> PathHistory {
        PathHistory::new(self.cfg.path_len)
    }

    /// Accuracy counters.
    pub fn stats(&self) -> TracePredictorStats {
        self.stats
    }

    /// Restores a previously captured counter snapshot. `predict` bumps the
    /// accuracy counters, so a checkpoint/replay scheduler that re-runs
    /// predictions must rewind them to stay cycle-exact with a straight run.
    pub fn restore_stats(&mut self, snapshot: TracePredictorStats) {
        self.stats = snapshot;
    }

    /// Predicts the trace following `hist`. Returns `None` when neither
    /// table hits (cold or aliased); the consumer then falls back to
    /// constructing a trace statically.
    pub fn predict(&mut self, hist: &PathHistory) -> Option<TraceId> {
        let (ci, ctag) = self.correlated_index(hist);
        if let Some(e) = &self.correlated[ci] {
            if e.tag == ctag {
                self.stats.from_correlated += 1;
                return Some(e.pred);
            }
        }
        let (si, stag) = self.simple_index(hist);
        if let Some(e) = &self.simple[si] {
            if e.tag == stag {
                self.stats.from_simple += 1;
                return Some(e.pred);
            }
        }
        self.stats.no_prediction += 1;
        None
    }

    /// Trains both tables: after `hist`, the next trace was `actual`.
    /// (The caller then pushes `actual` onto `hist`.)
    pub fn update(&mut self, hist: &PathHistory, actual: TraceId) {
        self.stats.traces += 1;
        let (ci, ctag) = self.correlated_index(hist);
        update_entry(&mut self.correlated[ci], ctag, actual);
        let (si, stag) = self.simple_index(hist);
        update_entry(&mut self.simple[si], stag, actual);
    }

    fn correlated_index(&self, hist: &PathHistory) -> (usize, u16) {
        // DOLC-flavoured hash: the most recent trace id contributes full
        // bits; each older id is shifted right so it contributes fewer.
        let mut acc: u64 = 0xabcd_ef01_2345_6789;
        for (age, h) in hist.iter_newest_first().enumerate() {
            acc ^= h >> (age as u32 * 5);
            acc = acc.rotate_left(11);
        }
        let mask = (1usize << self.cfg.correlated_bits) - 1;
        ((acc as usize) & mask, (acc >> 48) as u16)
    }

    fn simple_index(&self, hist: &PathHistory) -> (usize, u16) {
        let h = hist.newest().unwrap_or(0x5555_aaaa);
        let mask = (1usize << self.cfg.simple_bits) - 1;
        (((h ^ (h >> 17)) as usize) & mask, (h >> 48) as u16)
    }
}

impl Default for TracePredictor {
    fn default() -> Self {
        TracePredictor::new(TracePredictorConfig::default())
    }
}

fn update_entry(slot: &mut Option<Entry>, tag: u16, actual: TraceId) {
    match slot {
        Some(e) if e.tag == tag => {
            if e.pred == actual {
                e.ctr = (e.ctr + 1).min(3);
            } else if e.ctr == 0 {
                e.pred = actual;
                e.ctr = 1;
            } else {
                e.ctr -= 1;
            }
        }
        Some(e) => {
            // Tag conflict: 2-bit counter arbitrates replacement.
            if e.ctr == 0 {
                *e = Entry {
                    tag,
                    pred: actual,
                    ctr: 1,
                };
            } else {
                e.ctr -= 1;
            }
        }
        None => {
            *slot = Some(Entry {
                tag,
                pred: actual,
                ctr: 1,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(pc: u64, outcomes: u32, branches: u8, len: u8) -> TraceId {
        TraceId {
            start_pc: pc,
            outcomes,
            branch_count: branches,
            len,
        }
    }

    /// Drives the predictor through `seq` repeatedly with a single history
    /// (update immediately after each trace), returning accuracy on the
    /// final repetition.
    fn learn_sequence(pred: &mut TracePredictor, seq: &[TraceId], reps: usize) -> f64 {
        let mut hist = pred.new_history();
        let mut last_correct = 0u64;
        let mut last_total = 0u64;
        for rep in 0..reps {
            for &t in seq {
                let p = pred.predict(&hist);
                if rep + 1 == reps {
                    last_total += 1;
                    if p == Some(t) {
                        last_correct += 1;
                    }
                }
                pred.update(&hist, t);
                hist.push(t);
            }
        }
        last_correct as f64 / last_total as f64
    }

    #[test]
    fn learns_a_repeating_trace_sequence() {
        let mut pred = TracePredictor::default();
        let seq: Vec<TraceId> = (0..4)
            .map(|i| tid(0x1000 + i * 0x80, i as u32, 3, 32))
            .collect();
        let acc = learn_sequence(&mut pred, &seq, 10);
        assert_eq!(acc, 1.0, "a short repeating sequence must be fully learned");
    }

    #[test]
    fn path_correlation_disambiguates_shared_context() {
        // Second-order context: after C·A comes X, after D·A comes Y. The
        // simple (last-trace) table alone cannot separate the two cases.
        let c = tid(0x10, 0, 0, 8);
        let d = tid(0x20, 0, 0, 8);
        let a = tid(0x30, 0, 0, 8);
        let x = tid(0x40, 0, 0, 8);
        let y = tid(0x50, 0, 0, 8);
        let seq = [c, a, x, d, a, y];
        let mut pred = TracePredictor::default();
        let acc = learn_sequence(&mut pred, &seq, 20);
        assert_eq!(acc, 1.0, "path history must disambiguate C·A→X vs D·A→Y");
    }

    #[test]
    fn cold_predictor_returns_none() {
        let mut pred = TracePredictor::default();
        let hist = pred.new_history();
        assert_eq!(pred.predict(&hist), None);
        assert_eq!(pred.stats().no_prediction, 1);
    }

    #[test]
    fn histories_are_independent_and_syncable() {
        let mut pred = TracePredictor::default();
        let a = tid(0x10, 0, 0, 4);
        let b = tid(0x20, 0, 0, 4);
        let mut committed = pred.new_history();
        // Teach: after A comes B (in committed context).
        for _ in 0..8 {
            pred.update(&committed, a);
            committed.push(a);
            pred.update(&committed, b);
            committed.push(b);
        }
        let mut spec = pred.new_history();
        spec.sync_to(&committed);
        let before = pred.predict(&spec);
        spec.push(tid(0x999, 0, 0, 4)); // speculate down a junk path
        spec.sync_to(&committed); // recover
        let after = pred.predict(&spec);
        assert_eq!(before, after);
        assert_eq!(spec, committed);
    }

    #[test]
    fn stats_track_sources() {
        let mut pred = TracePredictor::default();
        let mut hist = pred.new_history();
        let a = tid(0x10, 0, 0, 4);
        for _ in 0..4 {
            let _ = pred.predict(&hist);
            pred.update(&hist, a);
            hist.push(a);
        }
        let s = pred.stats();
        assert_eq!(s.traces, 4);
        assert!(s.from_correlated + s.from_simple + s.no_prediction >= 4);
    }

    #[test]
    fn replacement_counter_provides_hysteresis() {
        // Establish A→B strongly in one fixed context, then observe a
        // single contradiction: the entry must survive it.
        let mut pred = TracePredictor::default();
        let ctx = pred.new_history();
        let b = tid(0x20, 0, 0, 4);
        let z = tid(0x30, 0, 0, 4);
        for _ in 0..6 {
            pred.update(&ctx, b);
        }
        pred.update(&ctx, z); // one disagreement
        assert_eq!(
            pred.predict(&ctx),
            Some(b),
            "2-bit counter resists single flips"
        );
    }

    #[test]
    fn path_history_caps_length() {
        let mut h = PathHistory::new(3);
        for i in 0..10 {
            h.push(tid(i * 4, 0, 0, 4));
        }
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
    }
}
